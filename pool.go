package ctgauss

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"ctgauss/internal/core"
	"ctgauss/internal/engine"
	"ctgauss/internal/prng"
	"ctgauss/internal/registry"
	"ctgauss/internal/sampler"
	"ctgauss/internal/sampler/gen"
)

// ErrClosed is returned by pool draws issued after (or racing) Close.
var ErrClosed = engine.ErrClosed

// ErrPoolDegraded is returned by pool draws when every shard is
// poisoned: each one's producer panicked and is either restarting
// (transient — retry after a backoff) or out of restart budget
// (permanent).  While at least one shard is healthy, draws transparently
// fail over to it and this error is never seen.
var ErrPoolDegraded = errors.New("ctgauss: all pool shards poisoned")

// Pool is the concurrent serving form of a sampler: one compiled circuit
// shared by a fixed set of shards, each an independent sampler instance
// with its own PRNG stream.  Next, NextBatch and Take are safe for any
// number of concurrent callers; requests spread across shards through a
// striped round-robin pick, so with at least as many shards as active
// goroutines they rarely contend.
//
// Refills run on the unified engine runtime (internal/engine): by
// default each shard's circuit evaluations happen on a background
// producer goroutine ahead of demand (Config.Prefetch refills of
// lookahead, adapting to the drain rate), so a request that finds the
// ring warm pays a copy, not an evaluation.  Config.Prefetch < 0
// selects the synchronous mode — refills inline under the shard lock,
// the pre-engine behaviour.  Each shard's sample stream is bit-identical
// in either mode; what changes is who pays the evaluation latency.
//
// A Pool owns background goroutines in asynchronous mode: call Close
// when done with it.  Draws concurrent with (or after) Close fail with
// ErrClosed, so serving layers should still drain first —
// internal/server's gate does — but a racing request degrades to an
// error, not a process crash.
//
// A panic inside one shard's refill (a circuit bug, an entropy failure)
// is contained by the engine runtime: the shard is poisoned, its
// sampler state rebuilt from the shard seed at a refill boundary, and
// its producer restarted with backoff, while draws fail over to the
// remaining healthy shards.  Only when every shard is poisoned do draws
// fail, with ErrPoolDegraded; Health exposes the per-shard state.
//
// The circuit comes from the process-wide build registry, so constructing
// any number of pools for one configuration runs the expensive
// minimization pipeline once.
//
// For serving pools over HTTP — batched draws with request coalescing,
// metrics, and backpressure — see internal/server and cmd/ctgaussd.
type Pool struct {
	art      *registry.Artifact
	eng      *engine.Engine[int]
	picker   *engine.Picker
	samplers []sampler.BatchSampler
	width    int // batches per shard refill (1 on the compiled path)

	// mkSampler rebuilds shard i's sampler from its domain-separated
	// seed — the engine's Reset hook after a recovered refill panic.  A
	// mid-fill panic may leave the old sampler's cursor and PRNG stream
	// torn mid-batch; rebuilding restarts the shard's stream at its
	// deterministic beginning, so post-recovery output is still pinned by
	// the golden vectors.
	mkSampler func(i int) (sampler.BatchSampler, error)
}

// DefaultPrefetch is the refill lookahead used when Config.Prefetch is
// 0: double buffering, so each shard's producer fills one slot while
// consumers drain another.
const DefaultPrefetch = engine.DefaultDepth

// poolWidth is the evaluation width of interpreter-backed pool shards:
// each circuit evaluation runs over poolWidth contiguous words (so
// poolWidth×64 samples per pass), amortizing interpreter dispatch and the
// bulk randomness draw across batches served from one refill.  It
// follows the active SIMD backend's native width (8 portable, 16
// AVX-512), so each pool's stream — and its golden pins — is a function
// of the backend's width, never of which ISA executes it.
func poolWidth() int { return sampler.NativeWidth() }

// NewPool builds a serving pool with default configuration for the given
// σ.  parallelism is the shard count: 0 means runtime.NumCPU().
//
// The default configuration uses a fixed, publicly known seed so runs are
// reproducible.  For production use — anywhere samples must be
// unpredictable, e.g. signature schemes — use NewPoolWithConfig and set
// Config.Seed from fresh randomness.
func NewPool(sigma string, parallelism int) (*Pool, error) {
	return NewPoolWithConfig(Config{Sigma: sigma}, parallelism)
}

// NewPoolWithConfig builds a serving pool from an explicit configuration.
func NewPoolWithConfig(cfg Config, parallelism int) (*Pool, error) {
	cfg = cfg.normalize()
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	art, err := registry.Shared().Get(core.Config{
		Sigma:   cfg.Sigma,
		N:       cfg.Precision,
		TailCut: cfg.TailCut,
		Min:     cfg.Minimizer,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	fn, nin, nval := compiledCircuit(cfg)
	// Only trust the generated circuit when its shape matches the freshly
	// built program (it is regenerated by `go generate`, not per build).
	useCompiled := fn != nil && nin == art.Program.NumInputs && nval == art.Program.ValueBits
	interpWidth := poolWidth()
	p := &Pool{art: art, picker: engine.NewPicker(parallelism), width: interpWidth}
	if useCompiled {
		p.width = 1
	}
	p.mkSampler = func(i int) (sampler.BatchSampler, error) {
		src, err := prng.NewSource(cfg.PRNG, shardSeed(cfg.Seed, i))
		if err != nil {
			return nil, err
		}
		if useCompiled {
			return sampler.NewCompiled(fmt.Sprintf("pool-compiled(%s)#%d", cfg.Sigma, i), fn, nin, nval, src), nil
		}
		return art.NewWideSampler(src, interpWidth), nil
	}
	p.samplers = make([]sampler.BatchSampler, parallelism)
	for i := range p.samplers {
		s, err := p.mkSampler(i)
		if err != nil {
			return nil, err
		}
		p.samplers[i] = s
	}
	p.eng = engine.New(engine.Config{
		Shards:   parallelism,
		SlotSize: p.width * 64,
		Depth:    resolvePrefetch(cfg.Prefetch),
		Reset:    p.resetShard,
	}, p.fillShard)
	return p, nil
}

// resolvePrefetch maps Config.Prefetch to an engine ring depth:
// 0 → DefaultPrefetch, negative → synchronous, positive → itself.
func resolvePrefetch(prefetch int) int {
	switch {
	case prefetch == 0:
		return DefaultPrefetch
	case prefetch < 0:
		return 0
	default:
		return prefetch
	}
}

// fillShard regenerates one refill of shard s.  Only s's producer (or,
// synchronously, the consumer holding s's ring lock) calls it, so the
// underlying sampler needs no extra locking; each call consumes exactly
// one circuit evaluation's randomness.
func (p *Pool) fillShard(s int, dst []int) {
	for off := 0; off < len(dst); off += 64 {
		p.samplers[s].NextBatch(dst[off : off+64])
	}
}

// resetShard is the engine's Reset hook: after a recovered refill panic
// it replaces shard s's sampler with a fresh one built from the same
// domain-separated seed, so the shard resumes at a clean refill boundary
// with a deterministic stream.  It runs with the same exclusivity as
// fillShard (the producer goroutine, or the ring lock in synchronous
// mode), so the plain assignment is race-free.  If the rebuild itself
// fails — it can only fail the way construction would have — the torn
// sampler stays and the next fill's panic spends the restart budget.
func (p *Pool) resetShard(s int) {
	if fresh, err := p.mkSampler(s); err == nil {
		p.samplers[s] = fresh
	}
}

// compiledCircuit returns the pregenerated native circuit for cfg, if the
// generator tool has emitted one (cmd/internal/gencircuits covers the
// paper's two evaluation configurations).  Compiled circuits skip the
// instruction-dispatch overhead of the interpreter.
func compiledCircuit(cfg Config) (fn func(in, out []uint64), numInputs, valueBits int) {
	if cfg.Minimizer != MinimizeExact || cfg.Precision != 128 || cfg.TailCut != 13 {
		return nil, 0, 0
	}
	fn, numInputs, valueBits, _ = gen.Lookup(cfg.Sigma)
	return fn, numInputs, valueBits
}

// shardSeed derives shard i's PRNG seed from the pool seed with domain
// separation, so shards produce independent streams from one master seed.
// The digest is 32 bytes — a valid seed for every supported PRNG.
func shardSeed(seed []byte, shard int) []byte {
	h := sha256.New()
	h.Write([]byte("ctgauss/pool/shard"))
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(shard))
	h.Write(idx[:])
	h.Write(seed)
	return h.Sum(nil)
}

// consume draws n items from a healthy shard, failing over from
// poisoned shards: starting at the picker's shard, it tries every shard
// once before giving up with ErrPoolDegraded.  Close and cancellation
// errors propagate unchanged.
func (p *Pool) consume(ctx context.Context, n int, fn func(chunk []int)) error {
	start := p.picker.Pick()
	for i := 0; i < len(p.samplers); i++ {
		s := (start + i) % len(p.samplers)
		err := p.eng.ConsumeFrom(ctx, s, n, fn)
		if err == nil || !errors.Is(err, engine.ErrShardPoisoned) {
			return err
		}
	}
	return ErrPoolDegraded
}

// Next returns one signed sample.  Safe for concurrent use.
func (p *Pool) Next() (int, error) {
	var v int
	err := p.consume(nil, 1, func(chunk []int) { v = chunk[0] })
	return v, err
}

// NextBatch fills dst[:64] with 64 signed samples.  Safe for concurrent
// use; each call is served whole by a single shard.  The length
// contract matches Sampler.NextBatch: len(dst) < 64 panics, len(dst) ≥
// 64 short-fills exactly dst[:64] and leaves the tail untouched.  On a
// non-nil error dst is undefined.
//
// The short-buffer rejection happens before a shard is claimed, so a
// bad caller never wedges a shard for everyone else.
func (p *Pool) NextBatch(dst []int) error {
	if len(dst) < 64 {
		panic(fmt.Sprintf("ctgauss: NextBatch dst has len %d, need ≥ 64", len(dst)))
	}
	n := 0
	return p.consume(nil, 64, func(chunk []int) {
		n += copy(dst[n:64], chunk)
	})
}

// Take fills all of dst — any length — with consecutive samples of the
// pool's shard streams: the engine hands out exact sub-slices of
// completed refills, so nothing is discarded and no leftover cursor is
// needed above the pool.  Requests larger than one refill are chunked
// refill-by-refill across shards, so big concurrent draws spread over
// the pool instead of serializing on one ring.  Safe for concurrent
// use; the serving layer's coalescers are thin wrappers over Take.
//
// ctx cancels a take blocked on a slow refill (nil never cancels); on
// any error — ErrClosed, ErrPoolDegraded, ctx.Err() — dst's contents
// are undefined and the caller must not serve them.
func (p *Pool) Take(ctx context.Context, dst []int) error {
	slot := p.width * 64
	for len(dst) > 0 {
		n := len(dst)
		if n > slot {
			n = slot
		}
		k := 0
		if err := p.consume(ctx, n, func(chunk []int) {
			k += copy(dst[k:n], chunk)
		}); err != nil {
			return err
		}
		dst = dst[n:]
	}
	return nil
}

// Close stops the pool's background refill goroutines (a no-op in
// synchronous mode beyond gating future draws).  Draws concurrent with
// or after Close fail with ErrClosed; serving layers drain first so the
// error is never served.
func (p *Pool) Close() { p.eng.Close() }

// ShardHealth is one shard's fault-isolation snapshot (see
// internal/engine): whether it is poisoned (producer restarting after a
// recovered panic) or dead (restart budget exhausted), plus lifetime
// restart and discarded-refill counts.
type ShardHealth = engine.ShardHealth

// Health snapshots the per-shard fault-isolation state (restarts,
// poisoned/dead flags, discarded refills), indexed by shard.
func (p *Pool) Health() []ShardHealth { return p.eng.Health() }

// RingStat is one shard's prefetch-ring occupancy snapshot (see
// internal/engine): buffered completed refills, the producer's
// adaptive target, and the configured depth.
type RingStat = engine.RingStat

// RingStats snapshots per-shard ring occupancy — the source of the
// ctgaussd_engine_ring_* gauges.
func (p *Pool) RingStats() []RingStat { return p.eng.Rings() }

// Size returns the shard count.
func (p *Pool) Size() int { return len(p.samplers) }

// Sigma returns the pool's σ as its configured decimal spelling — the
// registry key the serving tiers route and label by.
func (p *Pool) Sigma() string { return p.art.Key.Sigma }

// BuildInFlight reports, without blocking, whether the process-wide
// registry is currently resolving cfg's circuit: a pool build for it
// has started (in this or another goroutine) but not finished.  The
// serving layer's tier controller uses it to distinguish a promotion
// stuck in exact minimization from one about to install — surfaced per
// key on /healthz.
func BuildInFlight(cfg Config) bool {
	cfg = cfg.normalize()
	inFlight, _ := registry.Shared().Inspect(core.Config{
		Sigma:   cfg.Sigma,
		N:       cfg.Precision,
		TailCut: cfg.TailCut,
		Min:     cfg.Minimizer,
	})
	return inFlight
}

// FromCache reports whether the pool's circuit was loaded from the
// registry's on-disk cache rather than built in this process.
func (p *Pool) FromCache() bool { return p.art.FromDisk }

// bitsPerRefill is the randomness cost of one shard refill: width
// batches of (NumInputs+1)×64 bits each.
func (p *Pool) bitsPerRefill() uint64 {
	return uint64(p.art.Program.NumInputs+1) * 64 * uint64(p.width)
}

// BitsUsed reports the random bits consumed by the served stream:
// refills whose consumption has begun × the fixed per-refill draw.
// These are exactly the evaluations the synchronous path would have
// run, so the ledger is independent of producer lookahead and exact:
// dividing by Stats.BitsPerBatch × Stats.BatchesPerRefill counts
// consumed circuit evaluations — the serving layer derives its refill
// metric this way.  (Lookahead refills the producers have built but no
// one has touched are accounted when consumption starts; EngineStats
// exposes the produced count.)
func (p *Pool) BitsUsed() uint64 {
	return p.eng.Ledger().RefillsStarted * p.bitsPerRefill()
}

// EngineStats is a snapshot of a pool-like serving engine's unified
// ledger (see internal/engine): refill production vs consumption and
// the prefetch hit ratio.
type EngineStats struct {
	Shards           int
	SamplesPerRefill int
	Prefetch         int  // configured lookahead depth (0 = synchronous)
	Async            bool // background producers running

	RefillsProduced uint64 // fills completed, including unconsumed lookahead
	RefillsStarted  uint64 // refills whose consumption began
	SamplesServed   uint64 // samples handed to callers
	PrefetchHits    uint64 // draws served without waiting for a fill
	PrefetchMisses  uint64 // draws that waited (async) or filled inline (sync)

	ProducerRestarts uint64 // fills that panicked and were recovered
	RefillsDiscarded uint64 // refills abandoned by a panicking fill
	ShardsPoisoned   int    // shards currently poisoned (restarting or dead)
}

// HitRatio returns PrefetchHits / (PrefetchHits + PrefetchMisses), or 0
// before any draw.
func (s EngineStats) HitRatio() float64 {
	total := s.PrefetchHits + s.PrefetchMisses
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(total)
}

// EngineStats snapshots the pool's refill-runtime ledger.
func (p *Pool) EngineStats() EngineStats {
	l := p.eng.Ledger()
	return EngineStats{
		Shards:           l.Shards,
		SamplesPerRefill: l.SlotSize,
		Prefetch:         l.Depth,
		Async:            p.eng.Async(),
		RefillsProduced:  l.RefillsProduced,
		RefillsStarted:   l.RefillsStarted,
		SamplesServed:    l.ItemsConsumed,
		PrefetchHits:     l.PrefetchHits,
		PrefetchMisses:   l.PrefetchMisses,
		ProducerRestarts: l.ProducerRestarts,
		RefillsDiscarded: l.RefillsDiscarded,
		ShardsPoisoned:   l.ShardsPoisoned,
	}
}

// Stats describes the shared circuit (same schema as Sampler.Stats).
func (p *Pool) Stats() Stats {
	a := p.art
	return Stats{
		Sigma:            a.Key.Sigma,
		Precision:        a.Key.N,
		Support:          a.Support,
		Delta:            a.Delta,
		Leaves:           a.LeafCount,
		Sublists:         a.SublistCount,
		ValueBits:        a.Program.ValueBits,
		WordOps:          a.Program.OpCount(),
		BitsPerBatch:     (a.Program.NumInputs + 1) * 64,
		BatchesPerRefill: p.width,
	}
}
