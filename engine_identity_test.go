package ctgauss_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ctgauss"
)

// TestPoolAsyncMatchesSync is the cross-engine bit-identity property
// test at the pool level: for every served σ configuration — the
// interpreter-backed reduced-precision build, a second σ, and (outside
// -short) the full-precision compiled circuit — an asynchronous pool's
// per-shard streams must equal a synchronous pool's exactly, whatever
// sizes the takes fragment them into.  Prefetch moves evaluation
// latency, never the stream.
//
// The acceptance golden set (internal/acceptance, testdata/golden.json)
// pins the same cross-depth contract absolutely: every PRNG backend at
// widths 1/4/8 is digest-verified at depths 0, 2 and 5 against one
// recorded stream, so a depth-dependent divergence also fails golden
// verification — see docs/ACCEPTANCE.md.
func TestPoolAsyncMatchesSync(t *testing.T) {
	cfgs := []ctgauss.Config{
		{Sigma: "2", Precision: 48},
		{Sigma: "1.5", Precision: 48},
		{Sigma: "6.15543", Precision: 32},
	}
	if !testing.Short() {
		cfgs = append(cfgs, ctgauss.Config{Sigma: "2"}) // compiled path, width 1
	}
	for _, base := range cfgs {
		base.Seed = []byte("cross-engine-identity")
		const shards = 2
		syncCfg, asyncCfg := base, base
		syncCfg.Prefetch = -1
		asyncCfg.Prefetch = 3
		ps, err := ctgauss.NewPoolWithConfig(syncCfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := ctgauss.NewPoolWithConfig(asyncCfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 60; i++ {
			shard := rng.Intn(shards)
			n := 1 + rng.Intn(700)
			a, b := make([]int, n), make([]int, n)
			if err := ps.TakeFromShard(shard, a); err != nil {
				t.Fatal(err)
			}
			if err := pa.TakeFromShard(shard, b); err != nil {
				t.Fatal(err)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("σ=%s n=%d shard %d take %d: sync %d vs async %d at %d",
						base.Sigma, base.Precision, shard, i, a[j], b[j], j)
				}
			}
		}
		if sb, ab := ps.BitsUsed(), pa.BitsUsed(); sb != ab {
			t.Fatalf("σ=%s: randomness ledgers diverge: sync %d, async %d", base.Sigma, sb, ab)
		}
		ps.Close()
		pa.Close()
	}
}

// TestPoolTakeMatchesBatchStream pins Take's stream semantics: on a
// single-shard pool, arbitrary-length takes concatenate to exactly the
// NextBatch stream a direct caller would draw — the property the server
// coalescers rely on for the HTTP bit-identity acceptance test.
func TestPoolTakeMatchesBatchStream(t *testing.T) {
	cfg := poolCfg
	cfg.Seed = []byte("take-stream")
	taker, err := ctgauss.NewPoolWithConfig(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer taker.Close()
	batcher, err := ctgauss.NewPoolWithConfig(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer batcher.Close()
	var got []int
	for _, n := range []int{5, 64, 100, 3, 128, 1, 511} {
		out := make([]int, n)
		if err := taker.Take(nil, out); err != nil {
			t.Fatal(err)
		}
		got = append(got, out...)
	}
	want := make([]int, 0, len(got)+64)
	batch := make([]int, 64)
	for len(want) < len(got) {
		if err := batcher.NextBatch(batch); err != nil {
			t.Fatal(err)
		}
		want = append(want, batch...)
	}
	for i, v := range got {
		if v != want[i] {
			t.Fatalf("Take stream diverges from NextBatch stream at %d: %d vs %d", i, v, want[i])
		}
	}
}

// TestLifecycleClosesGoroutines is the goroutine-leak test for every
// Close the refill runtime introduced: async pools and arbitrary
// samplers own background producers that must all exit on Close.
func TestLifecycleClosesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	p, err := ctgauss.NewPoolWithConfig(poolCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.NextBatch(make([]int, 64)); err != nil {
		t.Fatal(err)
	}
	if es := p.EngineStats(); !es.Async || es.Prefetch != ctgauss.DefaultPrefetch {
		t.Fatalf("default pool engine not async at default depth: %+v", es)
	}
	arb, err := ctgauss.NewArbitrary(ctgauss.ArbitraryConfig{
		BaseSigmas: []string{"2"},
		Shards:     2,
		Seed:       []byte("lifecycle"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.NextBatch(2.5, 0, make([]int, 10)); err != nil {
		t.Fatal(err)
	}
	if runtime.NumGoroutine() <= before {
		t.Fatal("async pool + arbitrary sampler started no background producers")
	}

	p.Close()
	arb.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive after Close, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}

	// A synchronous pool owns no goroutines at all.
	cfg := poolCfg
	cfg.Prefetch = -1
	ps, err := ctgauss.NewPoolWithConfig(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.NextBatch(make([]int, 64)); err != nil {
		t.Fatal(err)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("sync pool started goroutines: %d > %d", g, before)
	}
	if es := ps.EngineStats(); es.Async || es.PrefetchMisses == 0 {
		t.Fatalf("sync pool engine stats: %+v", es)
	}
	ps.Close()
}
