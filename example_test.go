package ctgauss_test

import (
	"fmt"

	"ctgauss"
)

// The default configuration reproduces the paper's Falcon setting
// (n = 128, τ = 13) and a fixed test seed, so this output is
// deterministic.  Pass Config.Seed for production randomness.
func ExampleNew() {
	s, err := ctgauss.New("2")
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Stats())
	fmt.Println("first samples:", s.Next(), s.Next(), s.Next(), s.Next())
	// Output:
	// σ=2 n=128: Δ=5, 1139 leaves in 125 sublists, 3588 word ops, 8384 bits/batch
	// first samples: -1 0 -1 4
}

func ExampleSampler_NextBatch() {
	s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 48})
	if err != nil {
		panic(err)
	}
	// 64 samples per call — the native bitsliced granularity: one
	// evaluation of the constant-time circuit fills all 64 lanes.
	batch := make([]int, 64)
	s.NextBatch(batch)
	fmt.Println(batch[:8])
	// Output:
	// [1 0 -1 -4 1 -1 -2 -3]
}

func ExampleNewLargeSigma() {
	// A small-σ base sampler plus the convolution z = z₁ + k·z₂ yields
	// σ_eff ≈ σ_base·√(1+k²) — here ≈ 2·√(1+10²) ≈ 20.1 — far cheaper
	// than building a circuit for σ = 20 directly.
	base, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 48})
	if err != nil {
		panic(err)
	}
	wide := ctgauss.NewLargeSigma(base, 10)
	fmt.Println(wide.Next(), wide.Next(), wide.Next())
	// Output:
	// 1 -41 -9
}

func ExampleNewPool() {
	// A Pool serves one compiled circuit to any number of goroutines;
	// shards hold independent PRNG streams derived from one seed.
	pool, err := ctgauss.NewPoolWithConfig(ctgauss.Config{
		Sigma:     "2",
		Precision: 48,
		Seed:      []byte("example"),
	}, 4)
	if err != nil {
		panic(err)
	}
	batch := make([]int, 64)
	pool.NextBatch(batch) // safe to call from concurrent goroutines
	// Pool streams depend on the host's SIMD evaluation width, so check
	// the draw instead of printing machine-dependent sample values.
	inRange := true
	for _, z := range batch {
		if z < -27 || z > 27 { // support of σ=2, τ=13: |z| ≤ ⌈13·2⌉
			inRange = false
		}
	}
	fmt.Println(pool.Size(), len(batch), inRange)
	// Output:
	// 4 64 true
}

func ExampleNewArbitrary() {
	// An Arbitrary sampler serves ANY admissible (σ, μ) from one
	// compiled base set — here just σ=2 — via convolution plus
	// constant-time randomized rounding.  No per-σ build happens at
	// request time, and every batch length is served exactly.
	arb, err := ctgauss.NewArbitrary(ctgauss.ArbitraryConfig{
		BaseSigmas: []string{"2"},
		Shards:     1,
		Seed:       []byte("example"),
	})
	if err != nil {
		panic(err)
	}
	samples := make([]int, 5)
	if err := arb.NextBatch(17.5, 0.375, samples); err != nil {
		panic(err)
	}
	plan, _ := arb.Plan(17.5)
	fmt.Println(len(samples), plan.Draws() > 1, plan.SigmaP >= 17.5)
	// Output:
	// 5 true true
}
