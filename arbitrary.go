package ctgauss

import (
	"context"

	"ctgauss/internal/convolve"
)

// ErrArbitraryDegraded is returned by Arbitrary draws when every shard
// is poisoned (see ErrPoolDegraded for the poisoning model).
var ErrArbitraryDegraded = convolve.ErrDegraded

// ArbitraryConfig controls an arbitrary-(σ, μ) sampler.  The zero value
// selects the documented defaults.
type ArbitraryConfig struct {
	// BaseSigmas are the decimal σ strings of the compiled base set
	// (default {"2", "6.15543"}, the paper's two evaluation
	// configurations).  The smallest member must be ≥ 1.
	BaseSigmas []string
	// Shards is the concurrency width (0 = NumCPU); each shard owns
	// independent base and coin streams.
	Shards int
	// Seed keys the streams (fixed development default; pass fresh
	// randomness in production, as with Pool).
	Seed []byte
	// PRNG selects the generator: "chacha20" (default), "shake256",
	// "aes-ctr".
	PRNG string
	// Workers bounds the build parallelism of a cold base-set
	// compilation (0 = all CPUs).
	Workers int
	// MinSigma and MaxSigma bound admissible σ requests (defaults 0.9
	// and 4096).
	MinSigma, MaxSigma float64
	// Prefetch is the base-draw refill lookahead per (shard, base
	// member) stream, as in Config.Prefetch (0 = default, negative =
	// synchronous).
	Prefetch int
}

// ArbitraryPlan describes how one σ is served: the dominating proposal
// width and the base draws of one trial (see internal/convolve).
type ArbitraryPlan = convolve.PlanInfo

// ArbitraryStats is a snapshot of an Arbitrary sampler's counters.
type ArbitraryStats = convolve.Stats

// Arbitrary serves D_{ℤ,σ,μ} for any admissible (σ, μ) from one
// compiled base set: the convolution layer (internal/convolve) selects
// a Micciancio–Walter-style ladder of base draws whose width dominates
// the target and reshapes it with constant-time randomized rounding.
// One Arbitrary replaces an unbounded family of per-σ samplers; the
// base set is resolved through the registry as a single artifact, so
// any number of Arbitrary instances (and the per-σ pools sharing its
// members) build each circuit at most once per process.
//
// Next and NextBatch are safe for any number of concurrent callers.
type Arbitrary struct {
	inner *convolve.Sampler
}

// NewArbitrary builds (or loads from the registry cache) the base set
// and returns a ready sampler.
func NewArbitrary(cfg ArbitraryConfig) (*Arbitrary, error) {
	s, err := convolve.New(convolve.Config{
		Bases:    cfg.BaseSigmas,
		Shards:   cfg.Shards,
		Seed:     cfg.Seed,
		PRNG:     cfg.PRNG,
		Workers:  cfg.Workers,
		MinSigma: cfg.MinSigma,
		MaxSigma: cfg.MaxSigma,
		Prefetch: cfg.Prefetch,
	})
	if err != nil {
		return nil, err
	}
	return &Arbitrary{inner: s}, nil
}

// Next returns one sample from D_{ℤ,σ,μ}.
func (a *Arbitrary) Next(sigma, mu float64) (int, error) {
	return a.inner.Next(sigma, mu)
}

// NextBatch fills all of dst with independent samples from D_{ℤ,σ,μ}.
// Unlike Sampler.NextBatch and Pool.NextBatch — whose native granularity
// is a fixed 64-sample batch — every length is served exactly.
func (a *Arbitrary) NextBatch(sigma, mu float64, dst []int) error {
	return a.inner.NextBatch(sigma, mu, dst)
}

// NextBatchContext is NextBatch with cancellation: ctx unblocks a draw
// waiting on a slow base refill and is checked between trial blocks.
// Draws fail over poisoned shards and return ErrArbitraryDegraded only
// when none is healthy.
func (a *Arbitrary) NextBatchContext(ctx context.Context, sigma, mu float64, dst []int) error {
	return a.inner.NextBatchContext(ctx, sigma, mu, dst)
}

// Plan reports how sigma would be served: the dominating proposal width
// and the base draws of one trial.
func (a *Arbitrary) Plan(sigma float64) (ArbitraryPlan, error) {
	return a.inner.Plan(sigma)
}

// Stats returns the serving counters (trials, acceptances, distinct
// plans, base-set provenance).
func (a *Arbitrary) Stats() ArbitraryStats { return a.inner.Stats() }

// BitsUsed reports total random bits consumed across all streams.
func (a *Arbitrary) BitsUsed() uint64 { return a.inner.BitsUsed() }

// Bounds returns the admissible σ range.
func (a *Arbitrary) Bounds() (min, max float64) { return a.inner.Bounds() }

// Health snapshots the per-shard fault-isolation state, merged across
// the base engines (a shard is poisoned if any base member's stream on
// it is poisoned).
func (a *Arbitrary) Health() []ShardHealth { return a.inner.Health() }

// RingStats snapshots per-shard ring occupancy, merged (summed) across
// the base engines that feed each shard's draws.
func (a *Arbitrary) RingStats() []RingStat { return a.inner.Rings() }

// Degraded reports whether any shard of the base engines is poisoned.
// The serving layer sheds free-form load — and the tier controller
// defers promotions — while this is true: a restarting base set should
// not also pay a minimization build.
func (a *Arbitrary) Degraded() bool {
	for _, h := range a.inner.Health() {
		if h.Poisoned {
			return true
		}
	}
	return false
}

// Close stops the background refill goroutines behind the base-draw
// streams.  Draws concurrent with or after Close fail with ErrClosed;
// the serving layer drains first so the error is never served.
func (a *Arbitrary) Close() { a.inner.Close() }
